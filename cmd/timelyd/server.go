package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"strings"
	"time"

	"repro/internal/batchq"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/sim"
)

// serverConfig sizes the robustness substrate around the request handler.
// The zero value of any field falls back to a sane default in newServer.
type serverConfig struct {
	// Par is the inner worker budget one experiment request may use.
	Par int
	// EvaluateTimeout is the deadline class for analytic evaluations
	// (POST /v1/evaluate): cheap closed-form work. 0 = unbounded.
	EvaluateTimeout time.Duration
	// ExperimentTimeout is the deadline class for artifact regeneration
	// (GET /v1/experiments/{id}): Monte-Carlo heavy. 0 = unbounded.
	ExperimentTimeout time.Duration
	// MaxConcurrent bounds compute requests holding workers at once;
	// defaults to Par (the limiter is sized off -par/GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds compute requests waiting for a slot; beyond it
	// requests shed with 429. 0 means the default (8×MaxConcurrent);
	// negative means no queue at all (busy slots shed immediately).
	QueueDepth int
	// MaxQueueWait bounds how long one request may wait for a slot
	// before shedding with 503.
	MaxQueueWait time.Duration
	// BatchWindow is the gather window of the evaluate batching layer:
	// compatible requests arriving within it group into one shared
	// evaluation. 0 means the default (2ms); negative disables gathering
	// (every request fires its own group immediately).
	BatchWindow time.Duration
	// BatchMax caps the distinct requests per batch group; a full group
	// fires without waiting out the window. 0 means the default (32).
	BatchMax int
	// CacheEntries sizes the LRU result cache keyed by the request's
	// cache key (spec hash + design options + seed). 0 means the default
	// (4096); negative disables caching.
	CacheEntries int
	// NoCoalesce disables singleflight de-duplication: byte-identical
	// concurrent requests each compute (they may still gather into one
	// group as distinct members). Combined with a negative BatchWindow
	// and BatchMax 1 it yields the pre-batching baseline the benchmark
	// harness compares against.
	NoCoalesce bool
	// Cluster optionally shards the evaluate keyspace across replicas:
	// a request whose batch key is owned by a healthy peer is proxied
	// there (see handleEvaluate). nil means standalone.
	Cluster *cluster.Cluster
	// Chaos optionally injects per-route latency/errors/panics (tests
	// and the -chaos flag).
	Chaos *serve.Chaos
	// Logger receives access lines, panic stacks and encode failures;
	// nil means log.Default().
	Logger *log.Logger
}

func (c *serverConfig) fillDefaults() {
	if c.Par < 1 {
		c.Par = 1
	}
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = c.Par
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8 * c.MaxConcurrent
	}
	if c.MaxQueueWait == 0 {
		c.MaxQueueWait = 10 * time.Second
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax == 0 {
		c.BatchMax = 32
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
}

// server is the timelyd request handler. All of its state is read-only
// after construction except the atomic admission/drain state in the
// limiter and the metric counters; one instance serves concurrent
// requests. The heavy shared inputs behind it (benchmark networks,
// analytic baselines, trained classifiers) live in sync.Once-keyed caches
// that compute each value exactly once regardless of request concurrency.
type server struct {
	cfg       serverConfig
	mux       *http.ServeMux
	handler   http.Handler // the composed middleware chain
	limiter   *serve.Limiter
	metrics   *serve.Metrics
	logger    *log.Logger
	started   time.Time
	evalClass serve.Class
	// evalCache holds finished /v1/evaluate response bodies keyed by the
	// request's cache key; evalQueue coalesces in-flight evaluations
	// (singleflight on the cache key, cross-request batching on the batch
	// key). See handleEvaluate.
	evalCache *batchq.Cache[[]byte]
	evalQueue *batchq.Queue[*evalJob, []byte]
}

// evalJob is the unit the batching queue carries: the decoded request plus
// its cache key, so the group executor can publish the finished body.
type evalJob struct {
	req      *sim.EvalRequest
	cacheKey string
}

// newServer wires the handler chain:
//
//	AccessLog → Recover → mux → [experiment: Admit → Chaos → handler]
//	                          → [evaluate:   ChaosFaults → handler → batchq → group executor]
//	                          → [cheap:      Chaos → handler]
//
// Cheap endpoints (/healthz, /readyz, /metricz, the network and
// experiment indexes, network registration) never queue behind compute,
// so liveness and inventory stay responsive under full load. The
// experiment endpoint passes classic per-request admission control.
// The evaluate endpoint runs through the batching layer instead: the
// handler consults the result cache and joins a coalescing group, and
// the GROUP executor (runEvalGroup) acquires one admission slot for the
// whole group — a coalesced waiter never holds a compute slot. Chaos
// error/panic injection stays per-request at the evaluate handler;
// chaos latency moves into the executor so it still burns slot time.
func newServer(cfg serverConfig) *server {
	cfg.fillDefaults()
	s := &server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		limiter: serve.NewLimiter(cfg.MaxConcurrent, cfg.QueueDepth, cfg.MaxQueueWait),
		metrics: &serve.Metrics{},
		logger:  cfg.Logger,
		started: time.Now(),
	}
	s.evalClass = serve.Class{Name: "evaluate", Timeout: cfg.EvaluateTimeout}
	s.evalCache = batchq.NewCache[[]byte](cfg.CacheEntries)
	window := cfg.BatchWindow
	if window < 0 {
		window = 0
	}
	s.evalQueue = batchq.New(context.Background(), window, cfg.BatchMax,
		!cfg.NoCoalesce, s.runEvalGroup)
	cheap := func(h http.HandlerFunc) http.Handler {
		return cfg.Chaos.Wrap(h)
	}
	compute := func(class serve.Class, h http.HandlerFunc) http.Handler {
		return serve.Admit(s.limiter, class, s.metrics, s.logger, cfg.Chaos.Wrap(h))
	}
	expClass := serve.Class{Name: "experiment", Timeout: cfg.ExperimentTimeout}

	s.mux.Handle("GET /healthz", cheap(s.handleHealthz))
	s.mux.Handle("GET /readyz", cheap(s.handleReadyz))
	s.mux.Handle("GET /metricz", cheap(s.handleMetricz))
	s.mux.Handle("POST /v1/networks", cheap(s.handleRegisterNetwork))
	s.mux.Handle("GET /v1/networks", cheap(s.handleNetworkIndex))
	s.mux.Handle("GET /v1/experiments", cheap(s.handleExperimentIndex))
	s.mux.Handle("POST /v1/evaluate", cfg.Chaos.WrapFaults(http.HandlerFunc(s.handleEvaluate)))
	s.mux.Handle("GET /v1/experiments/{id}", compute(expClass, s.handleExperiment))

	s.handler = serve.AccessLog(s.logger, s.metrics,
		serve.Recover(s.logger, s.metrics, s.mux))
	return s
}

// maxRequestBody bounds every POST body; larger requests get 413.
const maxRequestBody = 1 << 20

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// StartDrain flips the server into drain mode: /readyz goes 503 so
// balancers stop routing here, and new compute requests shed immediately
// while in-flight ones finish under the HTTP server's graceful Shutdown.
func (s *server) StartDrain() { s.limiter.StartDrain() }

// writeError emits the uniform JSON error body (no phase, no Retry-After
// — admission failures are written by the serve middleware instead).
func (s *server) writeError(w http.ResponseWriter, status int, err error) {
	serve.WriteError(w, s.logger, status, "", 0, err)
}

// writeComputeError maps a computation error onto the wire and the
// access-log outcome. A deadline that expired mid-compute carries
// phase=compute in the body, completing the queue-vs-compute story the
// admission middleware starts. A cancelled client gets no body (nobody is
// listening); AccessLog books it as 499/client_gone, NOT as a shed or a
// server error, so overload accounting stays honest.
func (s *server) writeComputeError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) {
		serve.MarkOutcome(r.Context(), "client_gone")
		return
	}
	phase := ""
	if errors.Is(err, context.DeadlineExceeded) {
		phase = "compute"
		s.metrics.ComputeDeadline.Add(1)
		serve.MarkOutcome(r.Context(), "compute_deadline")
	} else {
		serve.MarkOutcome(r.Context(), "error")
	}
	serve.WriteError(w, s.logger, errorStatus(err), phase, 0, err)
}

// errorStatus maps a computation error to its HTTP status: typed facade
// errors are the client's fault, context expiry is a timeout, anything
// else is ours. context.Canceled only reaches a response when the client
// already disconnected; writeComputeError suppresses the body and the
// access log records 499 instead.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, sim.ErrUnknownBackend),
		errors.Is(err, sim.ErrUnknownNetwork),
		errors.Is(err, sim.ErrInvalidOption),
		errors.Is(err, sim.ErrInvalidSpec):
		return http.StatusBadRequest
	case errors.Is(err, sim.ErrDuplicateNetwork):
		return http.StatusConflict
	case errors.Is(err, sim.ErrRegistryFull):
		return http.StatusInsufficientStorage
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return serve.StatusClientGone
	}
	return http.StatusInternalServerError
}

// writeJSON emits v as an indented JSON response. Encode failures are
// logged: the 200 header is committed by then, so the log line is the
// only place the failure can surface.
func (s *server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil && s.logger != nil {
		s.logger.Printf("timelyd: encoding response: %v", err)
	}
}

// pickFormat negotiates the representation of the experiment endpoints:
// an explicit ?format= query parameter wins, then the Accept header, then
// aligned text.
func pickFormat(r *http.Request) (string, error) {
	if f := r.URL.Query().Get("format"); f != "" {
		switch f {
		case "text", "csv", "json":
			return f, nil
		}
		return "", fmt.Errorf("unknown format %q (want text, csv or json)", f)
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/json"):
		return "json", nil
	case strings.Contains(accept, "text/csv"):
		return "csv", nil
	}
	return "text", nil
}

// contentType maps a negotiated format to its response media type.
func contentType(format string) string {
	switch format {
	case "json":
		return "application/json; charset=utf-8"
	case "csv":
		return "text/csv; charset=utf-8"
	}
	return "text/plain; charset=utf-8"
}

// handleHealthz reports pure liveness plus the served inventory. It stays
// 200 under overload and during drain — "the process is up" — so
// orchestrators do not kill a pod that is merely busy; routing decisions
// belong to /readyz.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]any{
		"status":      "ok",
		"uptime_s":    time.Since(s.started).Seconds(),
		"backends":    sim.Backends(),
		"experiments": len(experiments.All()),
	})
}

// handleReadyz reports routability: 503 while draining (the balancer must
// stop sending traffic so Shutdown can finish) and 503 when the admission
// queue is saturated (new compute requests would only bounce). The body
// always carries the live queue picture.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	conc, depth := s.limiter.Capacity()
	body := map[string]any{
		"in_flight":      s.limiter.InFlight(),
		"queued":         s.limiter.Queued(),
		"max_concurrent": conc,
		"queue_depth":    depth,
	}
	switch {
	case s.limiter.Draining():
		body["status"] = "draining"
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
	case s.limiter.Saturated():
		body["status"] = "overloaded"
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	default:
		body["status"] = "ready"
	}
	s.writeJSON(w, body)
}

// handleMetricz exposes the service counters as JSON (admission, shed,
// deadline, panic, client-gone, queue-wait totals) plus the live limiter
// gauges — the numbers the loadgen harness correlates its client-side
// report against.
func (s *server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	snap["in_flight"] = s.limiter.InFlight()
	snap["queued"] = s.limiter.Queued()
	snap["shed_total"] = s.metrics.Shed()
	hits, misses, evictions := s.evalCache.Stats()
	snap["cache_hits"] = hits
	snap["cache_misses"] = misses
	snap["cache_evictions"] = evictions
	batches, batched, coalesced := s.evalQueue.Stats()
	snap["batches"] = batches
	snap["batched_requests"] = batched
	snap["coalesced_requests"] = coalesced
	// The cluster counters are part of the stable snapshot shape even
	// standalone (all-zero); per-peer breaker keys appear only when a
	// fleet is configured. Ordering stays stable because writeJSON
	// renders maps with sorted keys.
	snap["forwarded"] = 0
	snap["forward_errors"] = 0
	snap["failover_local"] = 0
	if c := s.cfg.Cluster; c != nil {
		c.Snapshot(snap)
	}
	s.writeJSON(w, snap)
}

// decodeJSON enforces the POST body contract shared by every mutation
// endpoint: a JSON media type (415 otherwise), a body bounded by
// maxRequestBody (413 when exceeded), strict field checking (400 on
// unknown fields or malformed JSON), and exactly ONE JSON value — content
// after the first value (a second object, stray tokens) is a 400, not
// silently ignored. It writes the error response itself and reports
// whether decoding succeeded.
func (s *server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	_, ok := s.decodeJSONRaw(w, r, v)
	return ok
}

// decodeJSONRaw is decodeJSON surfacing the exact body bytes it decoded
// — the cluster forwarding path re-sends those bytes verbatim so the
// owning replica decodes (and answers) the identical request.
func (s *server) decodeJSONRaw(w http.ResponseWriter, r *http.Request, v any) ([]byte, bool) {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
		s.writeError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("content type %q is not supported; send application/json", ct))
		return nil, false
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooBig.Limit))
			return nil, false
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return nil, false
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return nil, false
	}
	// The body must be exactly one JSON value: a second Decode must hit
	// clean EOF, else the request smuggled trailing content past the
	// strict field check.
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest,
			errors.New("decoding request body: unexpected content after the JSON value"))
		return nil, false
	}
	return raw, true
}

// handleEvaluate decodes one sim.EvalRequest — naming a zoo or registered
// network, or carrying an inline network spec — and serves it through the
// batching layer:
//
//  1. derive the request's identity keys (a malformed request is a 400
//     here, before it ever touches admission),
//  2. in cluster mode, route on the batch key: a request owned by a
//     healthy peer is proxied there with the raw body and an incremented
//     hop header, and the owner's response — status, Retry-After,
//     Cache-Status, body — streams back verbatim. Requests at the hop
//     bound, owned by this replica, or owned by a peer whose breaker is
//     open compute locally (the latter trades cache locality for
//     availability); a forward that fails at transport level falls
//     through to local compute the same way,
//  3. consult the result cache — a hit answers without a compute slot,
//  4. join the coalescing queue: byte-identical in-flight requests share
//     one computation (Cache-Status: coalesced), compatible requests that
//     differ only in seed batch into one fused group evaluation.
//
// The group executor (runEvalGroup) holds the single admission slot for
// the whole group; shed failures fan back here per waiter.
func (s *server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req sim.EvalRequest
	raw, ok := s.decodeJSONRaw(w, r, &req)
	if !ok {
		return
	}
	if info := serve.RequestInfo(r.Context()); info != nil {
		info.Class = s.evalClass.Name
	}
	cacheKey, batchKey, err := req.Keys()
	if err != nil {
		s.writeComputeError(w, r, err)
		return
	}
	if c := s.cfg.Cluster; c != nil {
		if owner, forward := c.Route(batchKey, cluster.Hops(r)); forward {
			if c.Forward(w, r, owner, raw) == nil {
				serve.MarkOutcome(r.Context(), "forwarded")
				return
			}
			// Transport-level forward failure: the breaker and the
			// forward_errors/failover_local counters are already booked;
			// fall through and compute locally so the client still gets
			// an answer while the owner is down.
		}
		w.Header().Set(cluster.ServedByHeader, c.Self())
	}
	if body, ok := s.evalCache.Get(cacheKey); ok {
		s.writeEvalBody(w, body, "hit")
		return
	}
	body, outcome, err := s.evalQueue.Do(r.Context(), batchKey, cacheKey,
		&evalJob{req: &req, cacheKey: cacheKey})
	if err != nil {
		s.writeEvalError(w, r, err)
		return
	}
	status := "miss"
	if outcome == batchq.Coalesced {
		status = "coalesced"
	}
	s.writeEvalBody(w, body, status)
}

// writeEvalBody writes a finished evaluate response body with its
// Cache-Status header (hit, miss or coalesced).
func (s *server) writeEvalBody(w http.ResponseWriter, body []byte, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Status", cacheStatus)
	if _, err := w.Write(body); err != nil && s.logger != nil {
		s.logger.Printf("timelyd: writing evaluate response: %v", err)
	}
}

// shedError marks an admission failure crossing back from the group
// executor to the waiting handlers, which must answer it with the uniform
// shed response (WriteShed) rather than a compute error.
type shedError struct{ err error }

func (e *shedError) Error() string { return e.err.Error() }
func (e *shedError) Unwrap() error { return e.err }

// writeEvalError maps a batching-path failure onto the wire. Three cases
// beyond the classic compute errors:
//
//   - the group was shed at admission → every waiter gets the uniform
//     queue-phase shed body (each waiter books its own shed metric: the
//     counters track requests, not groups);
//   - the shared computation was cancelled but THIS client is still
//     connected (it joined a group in the instant its last other waiter
//     departed) → a retryable 503, not a phantom 499;
//   - everything else → writeComputeError, same as the unbatched server.
func (s *server) writeEvalError(w http.ResponseWriter, r *http.Request, err error) {
	var shed *shedError
	if errors.As(err, &shed) {
		serve.WriteShed(w, r, s.limiter, s.metrics, s.logger, shed.err)
		return
	}
	if errors.Is(err, context.Canceled) && r.Context().Err() == nil {
		serve.MarkOutcome(r.Context(), "shed")
		serve.WriteError(w, s.logger, http.StatusServiceUnavailable, "queue", time.Second,
			errors.New("shared computation was abandoned; retry"))
		return
	}
	s.writeComputeError(w, r, err)
}

// runEvalGroup is the batchq executor: it runs ONE group of coalesced
// evaluate requests under a single admission slot and returns each
// member's finished response body. The slot is acquired with the evaluate
// deadline class; on shed every member fails with the same wrapped
// admission error. Chaos latency is applied inside the slot (matching
// where Chaos.Wrap ran when the handler held the slot itself), the fused
// evaluation runs under the class budget minus queue wait, and each
// successful body is published to the result cache.
func (s *server) runEvalGroup(ctx context.Context, jobs []*evalJob) ([][]byte, []error) {
	bodies := make([][]byte, len(jobs))
	errs := make([]error, len(jobs))
	g, err := s.limiter.Acquire(ctx, s.evalClass.Timeout)
	if err != nil {
		for i := range errs {
			errs[i] = &shedError{err: err}
		}
		return bodies, errs
	}
	defer g.Release()
	s.metrics.Admitted.Add(1)
	s.metrics.QueueWaitNanos.Add(int64(g.Wait))
	if s.evalClass.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.evalClass.Timeout-g.Wait)
		defer cancel()
	}
	s.cfg.Chaos.SleepLatency(ctx, "/v1/evaluate")
	reqs := make([]*sim.EvalRequest, len(jobs))
	for i, j := range jobs {
		reqs[i] = j.req
	}
	vals, verrs := sim.EvaluateBatch(ctx, reqs)
	for i, j := range jobs {
		if verrs[i] != nil {
			errs[i] = verrs[i]
			continue
		}
		body, merr := json.MarshalIndent(vals[i], "", "  ")
		if merr != nil {
			errs[i] = fmt.Errorf("encoding response: %w", merr)
			continue
		}
		body = append(body, '\n')
		bodies[i] = body
		s.evalCache.Put(j.cacheKey, body)
	}
	return bodies, errs
}

// handleRegisterNetwork validates the posted network spec and registers it
// process-wide, so later /v1/evaluate requests can reference it by name.
// The response summarises the compiled network (layer count, MACs, params)
// and its canonical spec hash. Registration is idempotent for an identical
// spec; a name conflict is 409, an invalid spec 400. Validation is pure
// shape inference — cheap — so this endpoint skips admission control.
func (s *server) handleRegisterNetwork(w http.ResponseWriter, r *http.Request) {
	var spec sim.NetworkSpec
	if !s.decodeJSON(w, r, &spec) {
		return
	}
	info, err := sim.RegisterNetwork(&spec)
	if err != nil {
		s.writeError(w, errorStatus(err), err)
		return
	}
	s.writeJSON(w, info)
}

// handleNetworkIndex lists the evaluable networks: the built-in Table III
// zoo and every registered custom network.
func (s *server) handleNetworkIndex(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]any{
		"zoo":    sim.ZooNetworks(),
		"custom": sim.RegisteredNetworks(),
	})
}

// experimentIndexTable renders the experiment inventory as a report table,
// the same renderer stack the artifacts themselves use.
func experimentIndexTable() *report.Table {
	t := report.New("", "id", "paper", "description")
	for _, e := range experiments.Index() {
		t.Add(e.ID, e.Paper, e.Description)
	}
	return t
}

// handleExperimentIndex lists the runnable experiments.
func (s *server) handleExperimentIndex(w http.ResponseWriter, r *http.Request) {
	format, err := pickFormat(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	switch format {
	case "json":
		s.writeJSON(w, map[string]any{
			"backends":    sim.Backends(),
			"experiments": experiments.Index(),
		})
	case "csv":
		w.Header().Set("Content-Type", contentType(format))
		experimentIndexTable().RenderCSV(w)
	default:
		w.Header().Set("Content-Type", contentType(format))
		experimentIndexTable().Render(w)
		fmt.Fprintf(w, "\nbackends (POST /v1/evaluate): %s\n", strings.Join(sim.Backends(), ", "))
	}
}

// handleExperiment regenerates one paper artifact under the admitted
// request context (deadline class "experiment", minus any queue wait) and
// writes it in the negotiated representation. The optional
// ?sampler=v1|v2|v3 query parameter selects the Monte-Carlo sampling
// regime (default v3, the counter-based keyed generator; v1/v2 reproduce
// the earlier pinned byte streams). The artifact is rendered into a
// buffer BEFORE any header is written, so a render failure surfaces as a
// clean 500 instead of a 200 with a truncated body.
func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	format, err := pickFormat(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sampler, err := stats.ParseSamplerVersion(r.URL.Query().Get("sampler"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	e, err := experiments.ByID(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	results := experiments.Run(r.Context(), []experiments.Experiment{e},
		experiments.Options{Par: s.cfg.Par, Sampler: sampler})
	if rerr := results[0].Err; rerr != nil {
		s.writeComputeError(w, r, fmt.Errorf("%s: %w", e.ID, rerr))
		return
	}
	var buf bytes.Buffer
	switch format {
	case "json":
		err = results[0].Document().RenderJSON(&buf)
	case "csv":
		err = experiments.WriteCSV(&buf, results)
	default:
		err = experiments.WriteText(&buf, results)
	}
	if err != nil {
		s.writeComputeError(w, r, fmt.Errorf("rendering %s as %s: %w", e.ID, format, err))
		return
	}
	w.Header().Set("Content-Type", contentType(format))
	if _, err := w.Write(buf.Bytes()); err != nil && s.logger != nil {
		s.logger.Printf("timelyd: writing %s response: %v", e.ID, err)
	}
}
