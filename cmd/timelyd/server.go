package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/sim"
)

// server is the timelyd request handler. All of its state is read-only
// after construction, so one instance serves concurrent requests; the
// heavy shared inputs behind it (benchmark networks, analytic baselines,
// trained classifiers) live in sync.Once-keyed caches that compute each
// value exactly once regardless of request concurrency.
type server struct {
	mux *http.ServeMux
	// par is the inner worker budget one experiment request may use.
	par int
	// timeout bounds each request's compute; 0 means request-context only.
	timeout time.Duration
	started time.Time
}

func newServer(par int, timeout time.Duration) *server {
	if par < 1 {
		par = 1
	}
	s := &server{
		mux:     http.NewServeMux(),
		par:     par,
		timeout: timeout,
		started: time.Now(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/networks", s.handleRegisterNetwork)
	s.mux.HandleFunc("GET /v1/networks", s.handleNetworkIndex)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentIndex)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	return s
}

// maxRequestBody bounds every POST body; larger requests get 413.
const maxRequestBody = 1 << 20

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// requestContext derives the compute context for one request: the client's
// context (cancelled on disconnect) bounded by the server's budget.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// writeError emits the uniform JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// errorStatus maps a computation error to its HTTP status: typed facade
// errors are the client's fault, context expiry is a timeout, anything
// else is ours.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, sim.ErrUnknownBackend),
		errors.Is(err, sim.ErrUnknownNetwork),
		errors.Is(err, sim.ErrInvalidOption),
		errors.Is(err, sim.ErrInvalidSpec):
		return http.StatusBadRequest
	case errors.Is(err, sim.ErrDuplicateNetwork):
		return http.StatusConflict
	case errors.Is(err, sim.ErrRegistryFull):
		return http.StatusInsufficientStorage
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is for the access log.
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// writeJSON emits v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// pickFormat negotiates the representation of the experiment endpoints:
// an explicit ?format= query parameter wins, then the Accept header, then
// aligned text.
func pickFormat(r *http.Request) (string, error) {
	if f := r.URL.Query().Get("format"); f != "" {
		switch f {
		case "text", "csv", "json":
			return f, nil
		}
		return "", fmt.Errorf("unknown format %q (want text, csv or json)", f)
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/json"):
		return "json", nil
	case strings.Contains(accept, "text/csv"):
		return "csv", nil
	}
	return "text", nil
}

// contentType maps a negotiated format to its response media type.
func contentType(format string) string {
	switch format {
	case "json":
		return "application/json; charset=utf-8"
	case "csv":
		return "text/csv; charset=utf-8"
	}
	return "text/plain; charset=utf-8"
}

// handleHealthz reports liveness plus the served inventory.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":      "ok",
		"uptime_s":    time.Since(s.started).Seconds(),
		"backends":    sim.Backends(),
		"experiments": len(experiments.All()),
	})
}

// decodeJSON enforces the POST body contract shared by every mutation
// endpoint: a JSON media type (415 otherwise), a body bounded by
// maxRequestBody (413 when exceeded), and strict field checking (400 on
// unknown fields or malformed JSON). It writes the error response itself
// and reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
		writeError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("content type %q is not supported; send application/json", ct))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	return true
}

// handleEvaluate decodes one sim.EvalRequest — naming a zoo or registered
// network, or carrying an inline network spec — and runs it through the
// public facade under the request context.
func (s *server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req sim.EvalRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, err := sim.Evaluate(ctx, &req)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSON(w, res)
}

// handleRegisterNetwork validates the posted network spec and registers it
// process-wide, so later /v1/evaluate requests can reference it by name.
// The response summarises the compiled network (layer count, MACs, params)
// and its canonical spec hash. Registration is idempotent for an identical
// spec; a name conflict is 409, an invalid spec 400.
func (s *server) handleRegisterNetwork(w http.ResponseWriter, r *http.Request) {
	var spec sim.NetworkSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	info, err := sim.RegisterNetwork(&spec)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSON(w, info)
}

// handleNetworkIndex lists the evaluable networks: the built-in Table III
// zoo and every registered custom network.
func (s *server) handleNetworkIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"zoo":    sim.ZooNetworks(),
		"custom": sim.RegisteredNetworks(),
	})
}

// experimentIndexTable renders the experiment inventory as a report table,
// the same renderer stack the artifacts themselves use.
func experimentIndexTable() *report.Table {
	t := report.New("", "id", "paper", "description")
	for _, e := range experiments.Index() {
		t.Add(e.ID, e.Paper, e.Description)
	}
	return t
}

// handleExperimentIndex lists the runnable experiments.
func (s *server) handleExperimentIndex(w http.ResponseWriter, r *http.Request) {
	format, err := pickFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch format {
	case "json":
		writeJSON(w, experiments.Index())
	case "csv":
		w.Header().Set("Content-Type", contentType(format))
		experimentIndexTable().RenderCSV(w)
	default:
		w.Header().Set("Content-Type", contentType(format))
		experimentIndexTable().Render(w)
	}
}

// handleExperiment regenerates one paper artifact under the request
// context and writes it in the negotiated representation. The optional
// ?sampler=v1|v2|v3 query parameter selects the Monte-Carlo sampling
// regime (default v3, the counter-based keyed generator; v1/v2 reproduce
// the earlier pinned byte streams).
func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	format, err := pickFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sampler, err := stats.ParseSamplerVersion(r.URL.Query().Get("sampler"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, err := experiments.ByID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	results := experiments.Run(ctx, []experiments.Experiment{e},
		experiments.Options{Par: s.par, Sampler: sampler})
	if rerr := results[0].Err; rerr != nil {
		writeError(w, errorStatus(rerr), fmt.Errorf("%s: %w", e.ID, rerr))
		return
	}
	w.Header().Set("Content-Type", contentType(format))
	switch format {
	case "json":
		results[0].Document().RenderJSON(w)
	case "csv":
		experiments.WriteCSV(w, results)
	default:
		experiments.WriteText(w, results)
	}
}
