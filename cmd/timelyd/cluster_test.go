package main

// Sharded cluster mode: 3-replica fleets on loopback listeners, proving
// the routing invariants the ISSUE gates on — byte-identical responses
// through any entry replica (par 1/2/8), hop-bounded forwarding (no
// routing loops), verbatim shed pass-through, and kill-one failover
// where survivors absorb the dead replica's keyspace by computing
// locally until its breaker re-closes.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/sim"
)

type replica struct {
	addr string
	srv  *server
	hs   *http.Server
}

// clusterOptions shapes one test fleet.
type clusterOptions struct {
	// mutate adjusts replica i's server config (nil = quietConfig).
	mutate func(i int, cfg *serverConfig)
	// cooldown is the breaker cooldown (default 1h: no half-open
	// surprises unless the test wants them).
	cooldown time.Duration
}

// startCluster boots n replicas sharing one consistent-hash ring, each
// on its own loopback listener. Probing is disabled — the tests drive
// breakers deterministically through forwarded traffic.
func startCluster(t *testing.T, n int, opts clusterOptions) []*replica {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	cooldown := opts.cooldown
	if cooldown == 0 {
		cooldown = time.Hour
	}
	reps := make([]*replica, n)
	for i := range reps {
		cfg := quietConfig()
		if opts.mutate != nil {
			opts.mutate(i, &cfg)
		}
		clu, err := cluster.New(cluster.Config{
			Self:          addrs[i],
			Peers:         addrs,
			ProbeInterval: -1,
			Cooldown:      cooldown,
			Client:        &http.Client{Timeout: 5 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cluster = clu
		reps[i] = startReplica(t, lns[i], cfg)
	}
	return reps
}

// startReplica serves cfg on ln and registers cleanup.
func startReplica(t *testing.T, ln net.Listener, cfg serverConfig) *replica {
	t.Helper()
	s := newServer(cfg)
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	r := &replica{addr: ln.Addr().String(), srv: s, hs: hs}
	t.Cleanup(func() { hs.Close() })
	return r
}

// clusterPost sends body to the replica's /v1/evaluate with optional
// extra headers and returns status, response headers and body.
func clusterPost(t *testing.T, addr, body string, hdr map[string]string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/evaluate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", addr, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(raw)
}

// batchKeyOf derives the routing key exactly as handleEvaluate does.
func batchKeyOf(t *testing.T, body string) string {
	t.Helper()
	var req sim.EvalRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	_, batchKey, err := req.Keys()
	if err != nil {
		t.Fatal(err)
	}
	return batchKey
}

// bodyOwnedBy hunts for an analytic evaluate body whose batch key the
// given replica owns (varying the chip count varies the key).
func bodyOwnedBy(t *testing.T, reps []*replica, owner int) string {
	t.Helper()
	clu := reps[0].srv.cfg.Cluster
	for chips := 1; chips <= 512; chips++ {
		body := fmt.Sprintf(`{"backend":"timely","network":"CNN-1","chips":%d}`, chips)
		if clu.Owner(batchKeyOf(t, body)) == reps[owner].addr {
			return body
		}
	}
	t.Fatal("no body owned by the target replica in 512 tries")
	return ""
}

// TestClusterByteIdenticalAcrossEntryReplicas is the acceptance gate:
// the same request, entering through ANY of the three replicas, yields
// byte-identical response bodies — at inner parallelism 1, 2 and 8.
// Routing makes this hold exactly: every entry replica proxies the key
// to its one owner, whose result cache freezes the response bytes
// (elapsed_ms included), so the wire bytes cannot depend on the entry
// point. Both analytic and functional (Monte-Carlo, where par changes
// the execution schedule but PR 6's determinism gates pin the output)
// requests are covered.
func TestClusterByteIdenticalAcrossEntryReplicas(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			reps := startCluster(t, 3, clusterOptions{
				mutate: func(i int, cfg *serverConfig) { cfg.Par = par },
			})
			bodies := []string{
				`{"backend":"timely","network":"CNN-1"}`,
				`{"backend":"timely","network":"VGG-D","chips":4}`,
				`{"backend":"prime","network":"SqueezeNet"}`,
				`{"backend":"isaac","network":"MLP-L"}`,
				`{"backend":"functional","network":"mlp","trials":2,"seed":7}`,
				`{"backend":"timely","network":"ResNet-152","gamma":16}`,
			}
			for _, body := range bodies {
				var bytes, served []string
				for _, rep := range reps {
					status, hdr, got := clusterPost(t, rep.addr, body, nil)
					if status != http.StatusOK {
						t.Fatalf("entry %s body %s: status %d (%s)", rep.addr, body, status, got)
					}
					bytes = append(bytes, got)
					served = append(served, hdr.Get(cluster.ServedByHeader))
				}
				for i := 1; i < 3; i++ {
					if bytes[i] != bytes[0] {
						t.Errorf("body %s: entry %d response differs from entry 0:\n%s\nvs\n%s",
							body, i, bytes[i], bytes[0])
					}
					if served[i] != served[0] {
						t.Errorf("body %s: served-by differs across entries: %v", body, served)
					}
				}
				if served[0] == "" {
					t.Errorf("body %s: no %s header", body, cluster.ServedByHeader)
				}
			}
		})
	}
}

// TestClusterRoutesToOwner pins the locality story: a request entering
// at a non-owner is answered by the owner (one forward), and repeating
// it through another non-owner hits the owner's result cache.
func TestClusterRoutesToOwner(t *testing.T) {
	reps := startCluster(t, 3, clusterOptions{})
	body := bodyOwnedBy(t, reps, 2)
	entries := []int{0, 1}

	status, hdr, _ := clusterPost(t, reps[entries[0]].addr, body, nil)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if got := hdr.Get(cluster.ServedByHeader); got != reps[2].addr {
		t.Fatalf("served by %q, want owner %s", got, reps[2].addr)
	}
	if cs := hdr.Get("Cache-Status"); cs != "miss" {
		t.Errorf("first request Cache-Status = %q, want miss", cs)
	}
	status, hdr, _ = clusterPost(t, reps[entries[1]].addr, body, nil)
	if status != http.StatusOK || hdr.Get(cluster.ServedByHeader) != reps[2].addr {
		t.Fatalf("second entry: status %d served by %q", status, hdr.Get(cluster.ServedByHeader))
	}
	if cs := hdr.Get("Cache-Status"); cs != "hit" {
		t.Errorf("same key via another entry: Cache-Status = %q, want hit (owner cache locality)", cs)
	}
	for _, i := range entries {
		if fwd, ferr, fol := reps[i].srv.cfg.Cluster.Counters(); fwd != 1 || ferr != 0 || fol != 0 {
			t.Errorf("entry %d counters = (%d,%d,%d), want (1,0,0)", i, fwd, ferr, fol)
		}
	}
}

// TestClusterHopBound proves the no-routing-loop invariant at the
// receiver: a request already carrying the hop bound is computed
// locally even though its key is owned elsewhere.
func TestClusterHopBound(t *testing.T) {
	reps := startCluster(t, 3, clusterOptions{})
	body := bodyOwnedBy(t, reps, 2)

	status, hdr, _ := clusterPost(t, reps[0].addr, body,
		map[string]string{cluster.HopHeader: fmt.Sprint(cluster.MaxHops)})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if got := hdr.Get(cluster.ServedByHeader); got != reps[0].addr {
		t.Errorf("hop-bounded request served by %q, want local %s", got, reps[0].addr)
	}
	if fwd, _, _ := reps[0].srv.cfg.Cluster.Counters(); fwd != 0 {
		t.Errorf("hop-bounded request was forwarded (%d)", fwd)
	}
}

// TestClusterShedPassThrough pins the forwarded error path: the owner
// sheds with 429 + Retry-After, and the client — talking only to the
// entry replica — sees the owner's status, Retry-After header and JSON
// body verbatim through the proxy hop.
func TestClusterShedPassThrough(t *testing.T) {
	const ownerIdx = 2
	var reps []*replica
	reps = startCluster(t, 3, clusterOptions{
		mutate: func(i int, cfg *serverConfig) {
			cfg.MaxConcurrent = 1
			cfg.QueueDepth = -1 // no queue: a busy slot sheds instantly
			if i == ownerIdx {
				chaos, err := serve.ParseChaos("route=/v1/evaluate,latency=800ms")
				if err != nil {
					t.Fatal(err)
				}
				cfg.Chaos = chaos
			}
		},
	})
	victim := bodyOwnedBy(t, reps, ownerIdx)

	// Occupy the owner's only slot: a hop-bounded request computes
	// locally there and sits out the injected 800ms inside the slot.
	occupied := make(chan struct{})
	go func() {
		defer close(occupied)
		clusterPost(t, reps[ownerIdx].addr,
			`{"backend":"timely","network":"SqueezeNet","chips":97}`,
			map[string]string{cluster.HopHeader: fmt.Sprint(cluster.MaxHops)})
	}()
	time.Sleep(200 * time.Millisecond)

	status, hdr, body := clusterPost(t, reps[0].addr, victim, nil)
	<-occupied
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", status, body)
	}
	if ra := hdr.Get("Retry-After"); ra != "5" {
		t.Errorf("Retry-After = %q, want 5 (half the 10s default queue wait, passed verbatim)", ra)
	}
	var e struct {
		Error       string `json:"error"`
		Phase       string `json:"phase"`
		RetryAfterS int    `json:"retry_after_s"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("shed body %q is not JSON: %v", body, err)
	}
	if !strings.Contains(e.Error, "admission queue full") || e.Phase != "queue" || e.RetryAfterS != 5 {
		t.Errorf("shed body = %+v, want the owner's uniform queue-full shed", e)
	}
	if fwd, ferr, _ := reps[0].srv.cfg.Cluster.Counters(); fwd != 1 || ferr != 0 {
		t.Errorf("entry counters = (fwd %d, err %d), want (1, 0): a shed is a forward, not a failure", fwd, ferr)
	}
	// A 429 came from a LIVE owner: the entry's breaker must stay closed.
	if st := reps[0].srv.cfg.Cluster.BreakerState(reps[ownerIdx].addr); st != cluster.StateClosed {
		t.Errorf("breaker after passed-through shed = %v, want closed", st)
	}
}

// elapsedRe normalizes the one wall-clock field of an EvalResult body;
// everything else must be byte-identical between a forwarded response
// and a failover local recompute.
var elapsedRe = regexp.MustCompile(`"elapsed_ms": [0-9.e+-]+`)

// TestClusterKillOneFailover is the chaos acceptance scenario: with one
// of three replicas dead, survivors absorb its keyspace by computing
// locally — every request still answers 200 — the dead peer's breaker
// opens after the failure threshold, and once open the doomed dial is
// skipped entirely. A revived listener on the same address is re-found
// through the half-open trial.
func TestClusterKillOneFailover(t *testing.T) {
	const deadIdx = 2
	reps := startCluster(t, 3, clusterOptions{cooldown: 300 * time.Millisecond})
	body := bodyOwnedBy(t, reps, deadIdx)
	clu := reps[0].srv.cfg.Cluster

	status, hdr, healthyBody := clusterPost(t, reps[0].addr, body, nil)
	if status != http.StatusOK || hdr.Get(cluster.ServedByHeader) != reps[deadIdx].addr {
		t.Fatalf("healthy: status %d served by %q", status, hdr.Get(cluster.ServedByHeader))
	}

	reps[deadIdx].hs.Close()

	// The default failure threshold is 3: requests 1–3 discover the
	// corpse at transport level and fail over to local compute; request
	// 4 finds the breaker open and never dials.
	for i := 1; i <= 4; i++ {
		status, hdr, got := clusterPost(t, reps[0].addr, body, nil)
		if status != http.StatusOK {
			t.Fatalf("failover request %d: status %d (%s)", i, status, got)
		}
		if sb := hdr.Get(cluster.ServedByHeader); sb != reps[0].addr {
			t.Fatalf("failover request %d served by %q, want local %s", i, sb, reps[0].addr)
		}
		// The failover answer carries the identical result payload —
		// only elapsed_ms (wall clock of whoever computed) may differ.
		if i == 1 {
			norm := func(s string) string { return elapsedRe.ReplaceAllString(s, `"elapsed_ms": X`) }
			if norm(got) != norm(healthyBody) {
				t.Errorf("failover result differs from the owner's beyond elapsed_ms:\n%s\nvs\n%s", got, healthyBody)
			}
		}
	}
	if st := clu.BreakerState(reps[deadIdx].addr); st != cluster.StateOpen {
		t.Fatalf("breaker after threshold transport failures = %v, want open", st)
	}
	fwd, ferr, fol := clu.Counters()
	if fwd != 1 || ferr != 3 || fol != 4 {
		t.Errorf("counters = (fwd %d, err %d, failover %d), want (1, 3, 4)", fwd, ferr, fol)
	}

	// /metricz on the survivor tells the same story, stable-keyed.
	resp, err := http.Get("http://" + reps[0].addr + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	rawSnap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap map[string]int64
	if err := json.Unmarshal(rawSnap, &snap); err != nil {
		t.Fatalf("metricz %s: %v", rawSnap, err)
	}
	if snap["forwarded"] != 1 || snap["forward_errors"] != 3 || snap["failover_local"] != 4 {
		t.Errorf("metricz cluster counters = fwd %d err %d failover %d, want 1/3/4",
			snap["forwarded"], snap["forward_errors"], snap["failover_local"])
	}
	if got := snap["peer_breaker_state:"+reps[deadIdx].addr]; got != int64(cluster.StateOpen) {
		t.Errorf("metricz breaker state for dead peer = %d, want %d (open)", got, cluster.StateOpen)
	}
	if got := snap["peer_breaker_opens:"+reps[deadIdx].addr]; got != 1 {
		t.Errorf("metricz breaker opens for dead peer = %d, want 1", got)
	}

	// Revive the replica on the SAME address; after the cooldown the
	// entry's half-open trial re-discovers it and routing resumes.
	var ln net.Listener
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", reps[deadIdx].addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", reps[deadIdx].addr, err)
	}
	revived := startReplica(t, ln, reps[deadIdx].srv.cfg)
	time.Sleep(350 * time.Millisecond) // cooldown elapses

	status2, hdr2, _ := clusterPost(t, reps[0].addr, body, nil)
	if status2 != http.StatusOK || hdr2.Get(cluster.ServedByHeader) != revived.addr {
		t.Fatalf("after revival: status %d served by %q, want owner %s",
			status2, hdr2.Get(cluster.ServedByHeader), revived.addr)
	}
	if st := clu.BreakerState(revived.addr); st != cluster.StateClosed {
		t.Errorf("breaker after successful trial = %v, want closed", st)
	}
}
