package main

// Overload, deadline, chaos and drain behavior: the service-robustness
// test suite. Determinism comes from the chaos injector (fixed latency,
// every-Nth error/panic counters) rather than racing real compute, so the
// shedding and recovery paths are exercised the same way on a loaded CI
// runner as on a workstation.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// chaosConfig builds a quiet server config with a parsed chaos spec.
func chaosConfig(t *testing.T, spec string) serverConfig {
	t.Helper()
	cfg := quietConfig()
	chaos, err := serve.ParseChaos(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = chaos
	return cfg
}

// doEvaluate posts a small analytic evaluation and returns the response.
func doEvaluate(t *testing.T, ts *httptest.Server) (*http.Response, string) {
	t.Helper()
	return doEvaluateBody(t, ts, `{"backend":"timely","network":"CNN-1"}`)
}

// doEvaluateChips posts an evaluation distinguished by its chip count —
// the admission tests need concurrent requests that neither coalesce nor
// batch together, so each occupies its own slot or queue position.
func doEvaluateChips(t *testing.T, ts *httptest.Server, chips int) (*http.Response, string) {
	t.Helper()
	return doEvaluateBody(t, ts,
		fmt.Sprintf(`{"backend":"timely","network":"CNN-1","chips":%d}`, chips))
}

func doEvaluateBody(t *testing.T, ts *httptest.Server, body string) (*http.Response, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

// phaseOf extracts the "phase" field of the uniform error body.
func phaseOf(t *testing.T, body string) string {
	t.Helper()
	var e struct {
		Phase string `json:"phase"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("body %q is not JSON: %v", body, err)
	}
	return e.Phase
}

// TestDecodeJSONRejectsTrailingContent pins the one-JSON-value body
// contract: content after the first value is a 400, not silently dropped.
func TestDecodeJSONRejectsTrailingContent(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
		want       int
	}{
		{"second object", `{"backend":"timely","network":"CNN-1"} {"backend":"prime"}`, http.StatusBadRequest},
		{"stray token", `{"backend":"timely","network":"CNN-1"}]`, http.StatusBadRequest},
		{"garbage", `{"backend":"timely","network":"CNN-1"}x`, http.StatusBadRequest},
		{"trailing whitespace ok", `{"backend":"timely","network":"CNN-1"}` + " \n\t ", http.StatusOK},
	}
	for _, tc := range cases {
		for _, path := range []string{"/v1/evaluate"} {
			status, body := post(t, ts, path, "application/json", tc.body)
			if status != tc.want {
				t.Errorf("%s on %s: status = %d, want %d (body %s)", tc.name, path, status, tc.want, body)
			}
			if tc.want != http.StatusOK {
				errorBody(t, body)
			}
		}
	}
	// The same decoder guards /v1/networks.
	status, body := post(t, ts, "/v1/networks", "application/json", tinySpecJSON("trailnet")+`{"x":1}`)
	if status != http.StatusBadRequest {
		t.Errorf("networks trailing: status = %d, want 400 (body %s)", status, body)
	}
}

// TestOverloadSheds saturates a 1-slot, 1-deep admission queue with
// chaos-injected latency and asserts the contract: the slot holder and
// the queued request succeed, everything beyond sheds with 429 and a
// Retry-After header instead of queueing unboundedly.
func TestOverloadSheds(t *testing.T) {
	cfg := chaosConfig(t, "route=/v1/evaluate,latency=400ms")
	cfg.MaxConcurrent = 1
	cfg.QueueDepth = 1
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the compute slot, then the single queue position, then
	// offer two more requests that must bounce. Distinct chip counts keep
	// the requests in separate batch groups, so each one contends for
	// admission on its own.
	var wg sync.WaitGroup
	statuses := make(chan int, 4)
	retryAfters := make(chan string, 4)
	launch := func(chips int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := doEvaluateChips(t, ts, chips)
			statuses <- resp.StatusCode
			retryAfters <- resp.Header.Get("Retry-After")
		}()
	}
	launch(1) // takes the slot (sleeps 400ms inside it)
	time.Sleep(100 * time.Millisecond)
	launch(2) // takes the queue position
	time.Sleep(100 * time.Millisecond)
	launch(3) // queue full → 429
	launch(4) // queue full → 429
	wg.Wait()
	close(statuses)
	close(retryAfters)

	counts := map[int]int{}
	for s := range statuses {
		counts[s]++
	}
	if counts[http.StatusOK] != 2 || counts[http.StatusTooManyRequests] != 2 {
		t.Fatalf("status counts = %v, want 2×200 and 2×429", counts)
	}
	sawRetryAfter := false
	for ra := range retryAfters {
		if ra != "" {
			sawRetryAfter = true
		}
	}
	if !sawRetryAfter {
		t.Error("no shed response carried a Retry-After header")
	}
	if got := srv.metrics.ShedQueueFull.Load(); got != 2 {
		t.Errorf("ShedQueueFull = %d, want 2", got)
	}
	if got := srv.metrics.Admitted.Load(); got != 2 {
		t.Errorf("Admitted = %d, want 2", got)
	}
}

// TestQueueWaitSheds pins the max-queue-wait policy: a request that waits
// longer than -queue-wait sheds with 503, phase "queue".
func TestQueueWaitSheds(t *testing.T) {
	cfg := chaosConfig(t, "route=/v1/evaluate,latency=500ms")
	cfg.MaxConcurrent = 1
	cfg.QueueDepth = 4
	cfg.MaxQueueWait = 50 * time.Millisecond
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // slot holder
		defer wg.Done()
		doEvaluateChips(t, ts, 1)
	}()
	time.Sleep(100 * time.Millisecond)
	resp, body := doEvaluateChips(t, ts, 2) // queued, must give up after 50ms
	wg.Wait()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if phase := phaseOf(t, body); phase != "queue" {
		t.Errorf("phase = %q, want queue", phase)
	}
	if got := srv.metrics.ShedQueueWait.Load(); got != 1 {
		t.Errorf("ShedQueueWait = %d, want 1", got)
	}
}

// TestQueueDeadline pins budget propagation: when the deadline class is
// smaller than the queue wait, the request fails 504 with phase "queue" —
// the client learns its time died waiting, not computing.
func TestQueueDeadline(t *testing.T) {
	// The slot holder runs in the generous "experiment" class so it keeps
	// the slot for the full injected latency; the victim's "evaluate"
	// class is shorter than that wait.
	cfg := chaosConfig(t, "route=/v1/experiments/,latency=500ms")
	cfg.MaxConcurrent = 1
	cfg.QueueDepth = 4
	cfg.EvaluateTimeout = 60 * time.Millisecond
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, ts, "/v1/experiments/table5", "") // holds the slot past the victim's budget
	}()
	time.Sleep(100 * time.Millisecond)
	resp, body := doEvaluate(t, ts)
	wg.Wait()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if phase := phaseOf(t, body); phase != "queue" {
		t.Errorf("phase = %q, want queue", phase)
	}
	if got := srv.metrics.QueueDeadline.Load(); got != 1 {
		t.Errorf("QueueDeadline = %d, want 1", got)
	}
}

// TestPanicRecovery injects a handler panic via chaos and asserts the
// process converts it into a 500 and keeps serving.
func TestPanicRecovery(t *testing.T) {
	cfg := chaosConfig(t, "route=/v1/evaluate,panic=1")
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := doEvaluate(t, ts)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	errorBody(t, body)
	if got := srv.metrics.Panics.Load(); got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
	// The process is alive and the untouched routes still serve.
	status, _, _ := get(t, ts, "/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("healthz after panic: status = %d", status)
	}
}

// TestChaosErrorInjection pins the deterministic every-Nth error
// schedule: error=2 fails exactly requests 2 and 4. The fault injection
// sits in front of the result cache, so the schedule stays per-request
// even though request 3 answers from cache.
func TestChaosErrorInjection(t *testing.T) {
	cfg := chaosConfig(t, "route=/v1/evaluate,error=2")
	ts := httptest.NewServer(newServer(cfg))
	defer ts.Close()
	want := []int{http.StatusOK, http.StatusInternalServerError, http.StatusOK, http.StatusInternalServerError}
	for i, w := range want {
		resp, body := doEvaluate(t, ts)
		if resp.StatusCode != w {
			t.Errorf("request %d: status = %d, want %d (body %s)", i+1, resp.StatusCode, w, body)
		}
	}
}

// TestReadyzDrain pins the liveness/readiness split: /readyz flips to 503
// when draining and compute requests shed, while /healthz stays 200 so
// orchestrators do not kill a draining pod.
func TestReadyzDrain(t *testing.T) {
	srv := newServer(quietConfig())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, body, _ := get(t, ts, "/readyz", "")
	if status != http.StatusOK || !strings.Contains(body, `"ready"`) {
		t.Fatalf("readyz before drain: status %d body %s", status, body)
	}

	srv.StartDrain()

	status, body, _ = get(t, ts, "/readyz", "")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, `"draining"`) {
		t.Fatalf("readyz during drain: status %d body %s", status, body)
	}
	resp, body2 := doEvaluate(t, ts)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("evaluate during drain: status = %d, want 503 (body %s)", resp.StatusCode, body2)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain shed without Retry-After")
	}
	if got := srv.metrics.ShedDraining.Load(); got != 1 {
		t.Errorf("ShedDraining = %d, want 1", got)
	}
	status, _, _ = get(t, ts, "/healthz", "")
	if status != http.StatusOK {
		t.Errorf("healthz during drain: status = %d, want 200 (liveness is not routability)", status)
	}
}

// TestCheapEndpointsBypassAdmission proves liveness and inventory never
// queue behind compute: with the only compute slot held and no queue,
// every cheap endpoint still answers immediately.
func TestCheapEndpointsBypassAdmission(t *testing.T) {
	cfg := chaosConfig(t, "route=/v1/evaluate,latency=600ms")
	cfg.MaxConcurrent = 1
	cfg.QueueDepth = -1 // no queue: a busy slot sheds immediately
	ts := httptest.NewServer(newServer(cfg))
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		doEvaluateChips(t, ts, 1) // occupies the slot for 600ms
	}()
	time.Sleep(100 * time.Millisecond)

	for _, path := range []string{"/healthz", "/metricz", "/v1/networks", "/v1/experiments"} {
		start := time.Now()
		status, _, _ := get(t, ts, path, "")
		if status != http.StatusOK {
			t.Errorf("%s under load: status = %d, want 200", path, status)
		}
		if d := time.Since(start); d > 300*time.Millisecond {
			t.Errorf("%s under load took %s — queued behind compute?", path, d)
		}
	}
	// With no queue, a merely-busy slot is normal operation: /readyz must
	// stay ready (it would otherwise flap under any steady traffic)...
	status, body, _ := get(t, ts, "/readyz", "")
	if status != http.StatusOK || !strings.Contains(body, `"ready"`) {
		t.Errorf("readyz with busy slot but no sheds: status %d body %s, want 200 ready", status, body)
	}
	// ...until the compute path actually sheds...
	resp, _ := doEvaluateChips(t, ts, 2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("compute under load: status = %d, want 429", resp.StatusCode)
	}
	// ...after which /readyz answers immediately AND honestly: requests
	// are bouncing, so balancers should route away.
	start := time.Now()
	status, body, _ = get(t, ts, "/readyz", "")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, `"overloaded"`) {
		t.Errorf("readyz under saturation: status %d body %s, want 503 overloaded", status, body)
	}
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Errorf("readyz under load took %s — queued behind compute?", d)
	}
	wg.Wait()
}

// TestMetricz asserts the counter surface exists and moves.
func TestMetricz(t *testing.T) {
	ts := testServer(t)
	doEvaluate(t, ts)
	status, body, ctype := get(t, ts, "/metricz", "")
	if status != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("metricz: status %d type %q", status, ctype)
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests", "admitted", "shed_total", "shed_queue_full",
		"queue_deadline", "compute_deadline", "client_gone", "panics", "in_flight", "queued",
		"cache_hits", "cache_misses", "cache_evictions",
		"batches", "batched_requests", "coalesced_requests",
		"forwarded", "forward_errors", "failover_local"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metricz missing %q (got %v)", key, m)
		}
	}
	// Standalone server: the cluster counters exist (stable snapshot
	// shape) and stay zero.
	if m["forwarded"] != 0 || m["forward_errors"] != 0 || m["failover_local"] != 0 {
		t.Errorf("standalone cluster counters nonzero: %v", m)
	}
	if m["admitted"] < 1 || m["requests"] < 2 {
		t.Errorf("counters did not move: %v", m)
	}
	// The one evaluate above went through the batching layer: one miss,
	// one single-member batch, nothing coalesced yet.
	if m["cache_misses"] != 1 || m["batches"] != 1 || m["batched_requests"] != 1 {
		t.Errorf("batching counters after one evaluate: %v", m)
	}
}
