package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// quietConfig is the baseline test configuration: one inner worker,
// generous deadline classes and admission headroom (so tests that are not
// about overload never shed), and no log noise.
func quietConfig() serverConfig {
	return serverConfig{
		Par:               1,
		EvaluateTimeout:   time.Minute,
		ExperimentTimeout: time.Minute,
		MaxConcurrent:     16,
		QueueDepth:        128,
		Logger:            log.New(io.Discard, "", 0),
	}
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(quietConfig()))
	t.Cleanup(ts.Close)
	return ts
}

// get fetches a path and returns status, body and content type.
func get(t *testing.T, ts *httptest.Server, path string, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func postEvaluate(t *testing.T, ts *httptest.Server, body string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// errorBody asserts the uniform JSON error shape and returns the message.
func errorBody(t *testing.T, body string) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Fatalf("body is not a JSON error object: %q (%v)", body, err)
	}
	return e.Error
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	status, body, ctype := get(t, ts, "/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("content type = %q", ctype)
	}
	var h struct {
		Status      string   `json:"status"`
		Backends    []string `json:"backends"`
		Experiments int      `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Experiments < 10 || len(h.Backends) < 4 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestEvaluateHappyPath(t *testing.T) {
	ts := testServer(t)
	status, body := postEvaluate(t, ts, `{"backend":"timely","network":"VGG-D","chips":2}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var res struct {
		Backend string  `json:"backend"`
		Network string  `json:"network"`
		Chips   int     `json:"chips"`
		Energy  float64 `json:"energy_mj_per_image"`
		IPS     float64 `json:"images_per_sec"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Backend != "timely" || res.Network != "VGG-D" || res.Chips != 2 {
		t.Errorf("result = %+v", res)
	}
	if res.Energy <= 0 || res.IPS <= 0 {
		t.Errorf("non-positive metrics: %+v", res)
	}
}

// TestEvaluateTimingBackend: the event-driven backend is reachable over the
// wire, and its cycle-level measurement block rides on the response.
func TestEvaluateTimingBackend(t *testing.T) {
	ts := testServer(t)
	status, body := postEvaluate(t, ts, `{"backend":"timing","network":"SqueezeNet","images":8}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var res struct {
		Backend string  `json:"backend"`
		Energy  float64 `json:"energy_mj_per_image"`
		IPS     float64 `json:"images_per_sec"`
		Timing  *struct {
			Images   int     `json:"images"`
			Commands int     `json:"commands"`
			P50      float64 `json:"latency_p50_ms"`
			P99      float64 `json:"latency_p99_ms"`
			Layers   []struct {
				Name string `json:"name"`
			} `json:"layers"`
			Units []struct {
				Role string `json:"role"`
			} `json:"units"`
		} `json:"timing"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Backend != "timing" || res.Energy <= 0 || res.IPS <= 0 {
		t.Errorf("result header = %+v", res)
	}
	if res.Timing == nil {
		t.Fatal("response carries no timing block")
	}
	if res.Timing.Images < 8 || res.Timing.Commands <= 0 ||
		res.Timing.P50 <= 0 || res.Timing.P99 < res.Timing.P50 ||
		len(res.Timing.Layers) == 0 || len(res.Timing.Units) == 0 {
		t.Errorf("timing block implausible: %+v", res.Timing)
	}
	// The analytic backends must not grow a timing block.
	_, plain := postEvaluate(t, ts, `{"backend":"timely","network":"SqueezeNet"}`)
	if strings.Contains(plain, `"timing"`) {
		t.Errorf("analytic response carries a timing block: %s", plain)
	}
	// images only makes sense on the simulator.
	status, body = postEvaluate(t, ts, `{"backend":"timely","network":"SqueezeNet","images":8}`)
	if status != http.StatusBadRequest {
		t.Errorf("images on analytic backend: status = %d, body %s", status, body)
	}
}

func TestEvaluateBadRequests(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
	}{
		{"unknown backend", `{"backend":"abacus","network":"VGG-D"}`},
		{"unknown network", `{"backend":"timely","network":"GPT-7"}`},
		{"invalid option", `{"backend":"timely","network":"VGG-D","bits":3}`},
		{"inapplicable option", `{"backend":"prime","network":"VGG-D","gamma":4}`},
		{"malformed json", `{"backend":`},
		{"unknown field", `{"backend":"timely","network":"VGG-D","warp":9}`},
	}
	for _, tc := range cases {
		status, body := postEvaluate(t, ts, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, status, body)
			continue
		}
		errorBody(t, body)
	}
}

// post sends a JSON body to a path with an arbitrary content type.
func post(t *testing.T, ts *httptest.Server, path, ctype, body string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, ctype, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// tinySpecJSON is a custom network absent from the zoo, in wire form.
func tinySpecJSON(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"input": {"c": 3, "h": 32, "w": 32},
		"layers": [
			{"name": "conv1", "kind": "conv", "filters": 16, "kernel": 3, "pad": 1},
			{"kind": "maxpool", "kernel": 2, "stride": 2},
			{"kind": "fc", "units": 10}
		]
	}`, name)
}

func TestEvaluateInlineSpec(t *testing.T) {
	ts := testServer(t)
	body := fmt.Sprintf(`{"backend":"timely","spec":%s}`, tinySpecJSON("httpnet"))
	status, raw := postEvaluate(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var res struct {
		Network  string  `json:"network"`
		Energy   float64 `json:"energy_mj_per_image"`
		IPS      float64 `json:"images_per_sec"`
		SpecHash string  `json:"spec_hash"`
	}
	if err := json.Unmarshal([]byte(raw), &res); err != nil {
		t.Fatal(err)
	}
	if res.Network != "httpnet" || res.Energy <= 0 || res.IPS <= 0 || res.SpecHash == "" {
		t.Errorf("result = %+v", res)
	}

	// An invalid inline spec is the client's fault.
	bad := `{"backend":"timely","spec":{"name":"x","input":{"c":1,"h":4,"w":4},"layers":[{"kind":"conv","filters":0,"kernel":3}]}}`
	status, raw = postEvaluate(t, ts, bad)
	if status != http.StatusBadRequest {
		t.Errorf("invalid spec: status = %d, body %s", status, raw)
	}
	if msg := errorBody(t, raw); !strings.Contains(msg, "filters") {
		t.Errorf("error %q does not name the offending field", msg)
	}
}

func TestRegisterNetworkEndpoint(t *testing.T) {
	ts := testServer(t)
	status, raw := post(t, ts, "/v1/networks", "application/json", tinySpecJSON("httpreg"))
	if status != http.StatusOK {
		t.Fatalf("register: status = %d, body %s", status, raw)
	}
	var info struct {
		Name   string `json:"name"`
		Layers int    `json:"layers"`
		MACs   int64  `json:"macs"`
		Params int64  `json:"params"`
		Hash   string `json:"hash"`
	}
	if err := json.Unmarshal([]byte(raw), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "httpreg" || info.Layers != 3 || info.MACs <= 0 || info.Hash == "" {
		t.Errorf("info = %+v", info)
	}

	// The registered network now evaluates by name.
	status, raw = postEvaluate(t, ts, `{"backend":"prime","network":"httpreg"}`)
	if status != http.StatusOK {
		t.Fatalf("evaluate registered: status = %d, body %s", status, raw)
	}

	// Idempotent re-registration; conflicting redefinition is 409.
	status, _ = post(t, ts, "/v1/networks", "application/json", tinySpecJSON("httpreg"))
	if status != http.StatusOK {
		t.Errorf("idempotent re-register: status = %d", status)
	}
	conflict := strings.Replace(tinySpecJSON("httpreg"), `"filters": 16`, `"filters": 8`, 1)
	status, raw = post(t, ts, "/v1/networks", "application/json", conflict)
	if status != http.StatusConflict {
		t.Errorf("conflict: status = %d, body %s", status, raw)
	}
	errorBody(t, raw)

	// Invalid specs are 400 with the offending field named.
	status, raw = post(t, ts, "/v1/networks", "application/json",
		`{"name":"httpbad","input":{"c":0,"h":4,"w":4},"layers":[{"kind":"fc","units":1}]}`)
	if status != http.StatusBadRequest {
		t.Errorf("invalid: status = %d", status)
	}
	errorBody(t, raw)

	// The index lists both zoo and custom entries.
	status, raw, _ = get(t, ts, "/v1/networks", "")
	if status != http.StatusOK {
		t.Fatalf("index: status = %d", status)
	}
	var idx struct {
		Zoo    []string `json:"zoo"`
		Custom []struct {
			Name string `json:"name"`
		} `json:"custom"`
	}
	if err := json.Unmarshal([]byte(raw), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Zoo) != 15 {
		t.Errorf("zoo has %d entries", len(idx.Zoo))
	}
	found := false
	for _, c := range idx.Custom {
		if c.Name == "httpreg" {
			found = true
		}
	}
	if !found {
		t.Errorf("custom index %+v missing httpreg", idx.Custom)
	}
}

// TestPostBodyHardening pins the shared POST contract: non-JSON content
// types get 415 and oversized bodies get 413 on every mutation endpoint.
func TestPostBodyHardening(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/v1/evaluate", "/v1/networks"} {
		status, raw := post(t, ts, path, "text/xml", `<spec/>`)
		if status != http.StatusUnsupportedMediaType {
			t.Errorf("%s xml: status = %d, want 415", path, status)
		}
		errorBody(t, raw)

		status, raw = post(t, ts, path, "application/x-www-form-urlencoded", "backend=timely")
		if status != http.StatusUnsupportedMediaType {
			t.Errorf("%s form: status = %d, want 415", path, status)
		}
		errorBody(t, raw)

		// An absent Content-Type is rejected too — the contract is
		// explicit application/json, not "anything parseable".
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(`{"backend":"timely"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Del("Content-Type")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("%s no content type: status = %d, want 415", path, resp.StatusCode)
		}
		errorBody(t, string(body))

		// A charset parameter on the JSON media type is fine (but the
		// payload here is junk, so decoding fails with 400).
		status, _ = post(t, ts, path, "application/json; charset=utf-8", `{"bogus":`)
		if status != http.StatusBadRequest {
			t.Errorf("%s charset: status = %d, want 400", path, status)
		}

		// Oversized bodies are rejected, not read to completion.
		big := `{"pad": "` + strings.Repeat("x", 2<<20) + `"}`
		status, raw = post(t, ts, path, "application/json", big)
		if status != http.StatusRequestEntityTooLarge {
			t.Errorf("%s big: status = %d, want 413", path, status)
		}
		errorBody(t, raw)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := testServer(t)
	// GET on the POST-only endpoint and POST on a GET-only endpoint.
	status, _, _ := get(t, ts, "/v1/evaluate", "")
	if status != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate status = %d, want 405", status)
	}
	resp, err := ts.Client().Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz status = %d, want 405", resp.StatusCode)
	}
}

func TestExperimentIndexNegotiation(t *testing.T) {
	ts := testServer(t)
	status, body, ctype := get(t, ts, "/v1/experiments", "application/json")
	if status != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("json index: status %d, type %q", status, ctype)
	}
	var idx struct {
		Backends    []string `json:"backends"`
		Experiments []struct {
			ID    string `json:"id"`
			Paper string `json:"paper"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Experiments) < 10 {
		t.Errorf("index has %d entries", len(idx.Experiments))
	}
	if len(idx.Backends) < 5 {
		t.Errorf("index lists %d backends: %v", len(idx.Backends), idx.Backends)
	}
	status, body, ctype = get(t, ts, "/v1/experiments", "text/csv")
	if status != http.StatusOK || !strings.Contains(ctype, "text/csv") ||
		!strings.HasPrefix(body, "id,paper,description") {
		t.Errorf("csv index: status %d, type %q, body %q", status, ctype, body[:40])
	}
	status, body, ctype = get(t, ts, "/v1/experiments", "")
	if status != http.StatusOK || !strings.Contains(ctype, "text/plain") ||
		!strings.Contains(body, "table5") {
		t.Errorf("text index: status %d, type %q", status, ctype)
	}
	if !strings.Contains(body, "backends") || !strings.Contains(body, "timing") {
		t.Errorf("text index missing the backend inventory:\n%s", body)
	}
	// The query parameter overrides the Accept header.
	status, body, _ = get(t, ts, "/v1/experiments?format=json", "text/csv")
	if status != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("format override ignored: %q", body[:40])
	}
	status, body, _ = get(t, ts, "/v1/experiments?format=yaml", "")
	if status != http.StatusBadRequest {
		t.Errorf("format=yaml: status %d, want 400", status)
	}
	errorBody(t, body)
}

func TestExperimentArtifact(t *testing.T) {
	ts := testServer(t)
	status, body, _ := get(t, ts, "/v1/experiments/table5", "")
	if status != http.StatusOK || !strings.Contains(body, "Table V") {
		t.Fatalf("text artifact: status %d, body %q", status, body)
	}
	status, body, _ = get(t, ts, "/v1/experiments/table5", "application/json")
	if status != http.StatusOK {
		t.Fatalf("json artifact: status %d", status)
	}
	var doc struct {
		ID     string `json:"id"`
		Tables []struct {
			Rows [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != "table5" || len(doc.Tables) == 0 || len(doc.Tables[0].Rows) == 0 {
		t.Errorf("document = %+v", doc)
	}
	status, body, _ = get(t, ts, "/v1/experiments/table5?format=csv", "")
	if status != http.StatusOK || !strings.HasPrefix(body, "# Table V") {
		t.Errorf("csv artifact: status %d, body %q", status, body[:40])
	}
	status, body, _ = get(t, ts, "/v1/experiments/fig99", "")
	if status != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", status)
	}
	errorBody(t, body)
}

// TestExperimentSamplerParam: the ?sampler= query selects the Monte-Carlo
// regime — analytic artifacts are regime-independent, bad spellings 400.
func TestExperimentSamplerParam(t *testing.T) {
	ts := testServer(t)
	_, def, _ := get(t, ts, "/v1/experiments/table5", "")
	for _, v := range []string{"v1", "v2", "v3"} {
		status, body, _ := get(t, ts, "/v1/experiments/table5?sampler="+v, "")
		if status != http.StatusOK || body != def {
			t.Errorf("sampler=%s: status %d, bytes changed=%v", v, status, body != def)
		}
	}
	status, body, _ := get(t, ts, "/v1/experiments/table5?sampler=bogus", "")
	if status != http.StatusBadRequest {
		t.Errorf("bogus sampler: status %d, want 400", status)
	}
	errorBody(t, body)
}

// TestConcurrentRequests exercises the memoized caches and the worker pool
// from many goroutines at once; run with -race this is the service's
// concurrency-safety proof.
func TestConcurrentRequests(t *testing.T) {
	ts := testServer(t)
	paths := []string{
		"/v1/experiments/table5",
		"/v1/experiments/fig10",
		"/v1/experiments/table5?format=csv",
		"/v1/experiments",
		"/healthz",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		for _, p := range paths {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				resp, err := ts.Client().Get(ts.URL + p)
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if _, err := io.ReadAll(resp.Body); err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", p, resp.StatusCode)
				}
			}(p)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"backend":"timely","network":"CNN-1","chips":%d}`, 1+i%3)
			resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("evaluate: status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRequestTimeout proves an expired compute budget aborts the run and
// surfaces as a gateway timeout (phase "compute") rather than hanging the
// handler.
func TestRequestTimeout(t *testing.T) {
	cfg := quietConfig()
	cfg.ExperimentTimeout = time.Nanosecond
	ts := httptest.NewServer(newServer(cfg))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/experiments/table5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	errorBody(t, string(body))
	var e struct {
		Phase string `json:"phase"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Phase != "compute" {
		t.Errorf("phase = %q, want compute (body %s)", e.Phase, body)
	}
}

// TestClientDisconnectCancelsRun proves a dropped connection cancels the
// in-flight computation context, and that the outcome is accounted as
// client-gone (nginx-style 499 in the access log) — NOT as a shed or a
// server error, so overload accounting stays honest.
func TestClientDisconnectCancelsRun(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := quietConfig()
	cfg.Logger = log.New(&logBuf, "", 0)
	s := newServer(cfg)
	req := httptest.NewRequest(http.MethodGet, "/v1/experiments/table5", nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // client already gone
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req.WithContext(ctx))
	if rec.Body.Len() != 0 {
		t.Errorf("wrote %q to a disconnected client", rec.Body.String())
	}
	logLine := logBuf.String()
	if !strings.Contains(logLine, "status=499") || !strings.Contains(logLine, "outcome=client_gone") {
		t.Errorf("access log %q missing 499/client_gone", logLine)
	}
	if got := s.metrics.ClientGone.Load(); got != 1 {
		t.Errorf("ClientGone = %d, want 1", got)
	}
	if got := s.metrics.Shed(); got != 0 {
		t.Errorf("Shed = %d, want 0 — client disconnects must not count as shed", got)
	}
}
