// Command timelyd serves the TIMELY reproduction's evaluation capabilities
// over HTTP — the traffic-facing face of the public sim facade.
//
// Endpoints:
//
//	GET  /healthz               pure liveness, backend and experiment inventory
//	GET  /readyz                routability: 503 while draining or saturated
//	GET  /metricz               service counters (admission, shed, deadline, panics)
//	POST /v1/evaluate           run one sim.EvalRequest, returns sim.EvalResult
//	POST /v1/networks           validate + register a custom network spec
//	GET  /v1/networks           list zoo and registered custom networks
//	GET  /v1/experiments        the experiment index
//	GET  /v1/experiments/{id}   regenerate one paper artifact
//
// /v1/evaluate accepts either a network name — a Table III benchmark or a
// previously registered custom network — or an inline declarative spec
// under "spec" (sim.NetworkSpec: name, input dims, conv/fc/pool layers),
// which is compiled, validated and evaluated in one call. POST bodies must
// be application/json (415 otherwise), at most 1 MiB (413 otherwise), and
// exactly one JSON value (400 on trailing content).
//
// The experiment endpoints negotiate their representation: JSON for
// Accept: application/json, CSV for Accept: text/csv, aligned text
// otherwise; a ?format=text|csv|json query parameter overrides. Errors are
// JSON bodies of the form {"error": "...", "phase": "queue"|"compute"}.
//
// Robustness model (see DESIGN.md "Service robustness"): compute
// endpoints (/v1/evaluate, /v1/experiments/{id}) pass a bounded admission
// queue — at most -max-concurrent requests compute at once, at most
// -queue-depth wait, nobody waits longer than -queue-wait — and shed with
// 429/503 plus a Retry-After header beyond that. Each compute class has a
// deadline budget (-evaluate-timeout, -timeout) covering queue wait AND
// compute; the error body's "phase" says where the time died. Cheap
// endpoints (health/ready/metrics, indexes, registration) bypass the
// queue so liveness never waits behind compute. Handler panics become
// logged 500s, not process crashes. The -chaos flag injects deterministic
// per-route latency/errors/panics for rehearsing all of the above
// (rule syntax: route=/v1/evaluate,latency=50ms,error=3,panic=7).
//
// Serving-side batching (see DESIGN.md "Cross-request batching & result
// cache"): /v1/evaluate responses are cached in an LRU keyed by the
// request's cache key (spec hash + design options + seed); byte-identical
// concurrent requests compute once and fan out (singleflight); compatible
// requests differing only in seed gather for -batch-window (or until
// -batch-max) and execute as ONE fused group evaluation under ONE
// admission slot. Every evaluate response carries a Cache-Status header:
// hit, miss or coalesced.
//
// Cluster mode (see DESIGN.md "Cluster mode"): -peers lists every
// replica's host:port (identically on every replica) and -self names
// this one's entry in that list. Each replica builds the same
// consistent-hash ring over the evaluate batch keyspace, so identical
// specs always land on the same replica and its result cache and
// singleflight pay off fleet-wide. A request owned by a healthy peer is
// proxied there (one hop at most — the X-Timely-Hop header bounds
// forwarding, so routing cannot loop) and the owner's response passes
// back verbatim, shed statuses and Retry-After included. Per-peer
// circuit breakers — fed by forward failures and background /readyz
// probes every -probe-interval — open after repeated failures, after
// which owned-elsewhere requests are computed locally (failover) until
// the peer recovers. /metricz exposes forwarded, forward_errors,
// failover_local and per-peer breaker states.
//
// Flags:
//
//	-addr <host:port>        listen address (default :8080)
//	-par N                   worker budget per experiment request (default GOMAXPROCS)
//	-timeout <dur>           experiment deadline class (default 2m; 0 = none)
//	-evaluate-timeout <dur>  evaluate deadline class (default 30s; 0 = none)
//	-max-concurrent N        compute slots (default -par)
//	-queue-depth N           bounded wait queue (default 8×max-concurrent)
//	-queue-wait <dur>        max time queued before shedding (default 10s)
//	-chaos <spec>            deterministic fault injection (default off)
//	-batch-window <dur>      evaluate batching gather window (default 2ms; 0 = no gathering)
//	-batch-max N             max requests fused into one evaluate batch (default 32)
//	-cache-entries N         evaluate result cache size (default 4096; 0 = off)
//	-coalesce                singleflight+batching on /v1/evaluate (default true)
//	-peers <a,b,c>           every replica's host:port, self included (default standalone)
//	-self <host:port>        this replica's entry in -peers (required with -peers)
//	-probe-interval <dur>    per-peer /readyz probe spacing (default 1s; 0 = no probes)
//
// Identical heavy inputs (benchmark networks, baseline evaluations,
// trained classifiers) are memoized process-wide, so concurrent requests
// for the same artifact compute it once. On SIGINT/SIGTERM the process
// drains: /readyz flips to 503, new compute requests shed, and in-flight
// requests get a 10 s grace period to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "worker budget per experiment request")
	timeout := flag.Duration("timeout", 2*time.Minute, "experiment deadline class: queue wait + compute (0 = none)")
	evalTimeout := flag.Duration("evaluate-timeout", 30*time.Second, "evaluate deadline class: queue wait + compute (0 = none)")
	maxConc := flag.Int("max-concurrent", 0, "compute requests admitted at once (default -par)")
	queueDepth := flag.Int("queue-depth", 0, "compute requests queued beyond that before 429s (default 8x max-concurrent)")
	queueWait := flag.Duration("queue-wait", 10*time.Second, "max time a request may queue before shedding with 503")
	chaosSpec := flag.String("chaos", "", "deterministic fault injection rules, e.g. route=/v1/evaluate,latency=50ms,error=3,panic=7")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "evaluate batching gather window (0 = fire immediately)")
	batchMax := flag.Int("batch-max", 32, "max requests fused into one evaluate batch")
	cacheEntries := flag.Int("cache-entries", 4096, "evaluate result cache entries (0 = cache off)")
	coalesce := flag.Bool("coalesce", true, "singleflight de-dup + batching on /v1/evaluate")
	peers := flag.String("peers", "", "comma-separated host:port of every replica, self included (empty = standalone)")
	self := flag.String("self", "", "this replica's entry in -peers (required with -peers)")
	probeInterval := flag.Duration("probe-interval", time.Second, "per-peer /readyz probe spacing (0 = no probes)")
	flag.Parse()

	chaos, err := serve.ParseChaos(*chaosSpec)
	if err != nil {
		log.Fatalf("timelyd: %v", err)
	}
	var clu *cluster.Cluster
	if *peers != "" {
		var addrs []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				addrs = append(addrs, p)
			}
		}
		// The serverConfig-style 0-disables spelling maps onto the
		// cluster config's negative-disables one.
		interval := *probeInterval
		if interval <= 0 {
			interval = -1
		}
		clu, err = cluster.New(cluster.Config{
			Self:          *self,
			Peers:         addrs,
			ProbeInterval: interval,
			Logger:        log.Default(),
		})
		if err != nil {
			log.Fatalf("timelyd: %v", err)
		}
	} else if *self != "" {
		log.Fatalf("timelyd: -self given without -peers")
	}
	// The serverConfig encodes "explicitly disabled" as negative (its 0
	// means "default"); the flags use the friendlier 0-disables spelling.
	window := *batchWindow
	if window <= 0 {
		window = -1
	}
	entries := *cacheEntries
	if entries <= 0 {
		entries = -1
	}
	srv := newServer(serverConfig{
		Par:               *par,
		EvaluateTimeout:   *evalTimeout,
		ExperimentTimeout: *timeout,
		MaxConcurrent:     *maxConc,
		QueueDepth:        *queueDepth,
		MaxQueueWait:      *queueWait,
		BatchWindow:       window,
		BatchMax:          *batchMax,
		CacheEntries:      entries,
		NoCoalesce:        !*coalesce,
		Chaos:             chaos,
		Cluster:           clu,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if clu != nil {
		clu.Start(ctx)
		log.Printf("timelyd: cluster mode, self=%s peers=%s probe-interval=%s",
			clu.Self(), strings.Join(clu.Peers(), ","), *probeInterval)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	conc, depth := srv.limiter.Capacity()
	log.Printf("timelyd: listening on %s (par=%d, max-concurrent=%d, queue-depth=%d, queue-wait=%s, timeout=%s, evaluate-timeout=%s, batch-window=%s, batch-max=%d, cache-entries=%d, coalesce=%t, chaos=%s)",
		*addr, srv.cfg.Par, conc, depth, srv.cfg.MaxQueueWait,
		srv.cfg.ExperimentTimeout, srv.cfg.EvaluateTimeout,
		*batchWindow, srv.cfg.BatchMax, *cacheEntries, *coalesce, chaos)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("timelyd: %v", err)
		}
	case <-ctx.Done():
		stop()
		// Drain: readiness goes 503 so balancers route away, new compute
		// requests shed immediately, in-flight ones get the grace period.
		srv.StartDrain()
		log.Printf("timelyd: signal received, draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("timelyd: forced close after grace period: %v", err)
			hs.Close()
		}
	}
	log.Printf("timelyd: bye")
}
