// Command timelyd serves the TIMELY reproduction's evaluation capabilities
// over HTTP — the traffic-facing face of the public sim facade.
//
// Endpoints:
//
//	GET  /healthz               liveness, backend and experiment inventory
//	POST /v1/evaluate           run one sim.EvalRequest, returns sim.EvalResult
//	POST /v1/networks           validate + register a custom network spec
//	GET  /v1/networks           list zoo and registered custom networks
//	GET  /v1/experiments        the experiment index
//	GET  /v1/experiments/{id}   regenerate one paper artifact
//
// /v1/evaluate accepts either a network name — a Table III benchmark or a
// previously registered custom network — or an inline declarative spec
// under "spec" (sim.NetworkSpec: name, input dims, conv/fc/pool layers),
// which is compiled, validated and evaluated in one call. POST bodies must
// be application/json (415 otherwise) and at most 1 MiB (413 otherwise).
//
// The experiment endpoints negotiate their representation: JSON for
// Accept: application/json, CSV for Accept: text/csv, aligned text
// otherwise; a ?format=text|csv|json query parameter overrides. Errors are
// JSON bodies of the form {"error": "..."}.
//
// Flags:
//
//	-addr <host:port>   listen address (default :8080)
//	-par N              worker budget per experiment request (default GOMAXPROCS)
//	-timeout <dur>      per-request compute budget (default 2m; 0 = none)
//
// Every request's computation runs under the request context plus -timeout:
// a disconnecting client or an expired budget cancels the in-flight
// evaluation between work units. Identical heavy inputs (benchmark
// networks, baseline evaluations, trained classifiers) are memoized
// process-wide, so concurrent requests for the same artifact compute it
// once. The process drains in-flight requests on SIGINT/SIGTERM before
// exiting (graceful shutdown, 10 s grace).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "worker budget per experiment request")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request compute budget (0 = none)")
	flag.Parse()

	srv := newServer(*par, *timeout)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("timelyd: listening on %s (par=%d, timeout=%s)", *addr, srv.par, srv.timeout)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("timelyd: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("timelyd: signal received, draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("timelyd: forced close after grace period: %v", err)
			hs.Close()
		}
	}
	log.Printf("timelyd: bye")
}
