package main

// The serving-side batching layer over real HTTP: singleflight
// de-duplication, the result cache, cross-request batch fan-out, and the
// cancelled-waiter race. Chaos latency (applied by the group executor
// inside the compute slot) stretches the computations so concurrency is
// deterministic, same as the robustness suite.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// evalResponse captures one evaluate round-trip.
type evalResponse struct {
	status      int
	cacheStatus string
	body        string
}

func postEvalFull(t *testing.T, ts *httptest.Server, body string) evalResponse {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return evalResponse{resp.StatusCode, resp.Header.Get("Cache-Status"), string(raw)}
}

// withoutElapsed parses a result body and drops the wall-clock field, the
// one part of a response that legitimately differs between a shared group
// evaluation and a solo one.
func withoutElapsed(t *testing.T, body string) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("body %q is not JSON: %v", body, err)
	}
	delete(m, "elapsed_ms")
	return m
}

// TestSingleflightHammer: byte-identical concurrent requests compute ONCE.
// One admission, one miss, the rest coalesced, every body identical — and
// the next identical request answers from cache without touching
// admission at all.
func TestSingleflightHammer(t *testing.T) {
	cfg := chaosConfig(t, "route=/v1/evaluate,latency=300ms")
	cfg.MaxConcurrent = 1
	cfg.QueueDepth = -1 // no queue: a second admission attempt would shed
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const body = `{"backend":"timely","network":"CNN-1","chips":3}`
	const n = 8
	results := make([]evalResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = postEvalFull(t, ts, body)
		}(i)
		if i == 0 {
			// Let the leader start computing (it holds the slot for the
			// injected 300ms) so the rest provably arrive mid-flight.
			time.Sleep(100 * time.Millisecond)
		}
	}
	wg.Wait()

	statuses := map[string]int{}
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, r.status, r.body)
		}
		if r.body != results[0].body {
			t.Errorf("request %d body diverged:\n%s\nvs\n%s", i, r.body, results[0].body)
		}
		statuses[r.cacheStatus]++
	}
	if statuses["miss"] != 1 || statuses["coalesced"] != n-1 {
		t.Errorf("Cache-Status counts = %v, want 1 miss + %d coalesced", statuses, n-1)
	}
	if got := srv.metrics.Admitted.Load(); got != 1 {
		t.Errorf("Admitted = %d, want 1 — a coalesced waiter held a compute slot", got)
	}
	if got := srv.metrics.Shed(); got != 0 {
		t.Errorf("Shed = %d, want 0", got)
	}

	// The finished body is cached: the next identical request is a hit and
	// never contends for the (still size-1) limiter.
	again := postEvalFull(t, ts, body)
	if again.status != http.StatusOK || again.cacheStatus != "hit" {
		t.Fatalf("repeat request: status %d Cache-Status %q", again.status, again.cacheStatus)
	}
	if again.body != results[0].body {
		t.Errorf("cached body diverged from the computed one")
	}
	if got := srv.metrics.Admitted.Load(); got != 1 {
		t.Errorf("Admitted after cache hit = %d, want still 1", got)
	}
	_, _, coalesced := srv.evalQueue.Stats()
	if coalesced != n-1 {
		t.Errorf("coalesced_requests = %d, want %d", coalesced, n-1)
	}
	hits, _, _ := srv.evalCache.Stats()
	if hits != 1 {
		t.Errorf("cache_hits = %d, want 1", hits)
	}
}

// TestBatchedSeedsFuseAndMatchSolo: two functional requests differing only
// in seed gather into ONE group (one admission, one batch of two) and each
// member's response matches what a batching-disabled server computes for
// it alone, wall clock excepted.
func TestBatchedSeedsFuseAndMatchSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the functional MLP")
	}
	cfg := quietConfig()
	cfg.BatchWindow = 300 * time.Millisecond
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bodyFor := func(seed int) string {
		return fmt.Sprintf(`{"backend":"functional","network":"mlp","trials":2,"seed":%d}`, seed)
	}
	var wg sync.WaitGroup
	batched := make([]evalResponse, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batched[i] = postEvalFull(t, ts, bodyFor(2020+i))
		}(i)
	}
	wg.Wait()
	for i, r := range batched {
		if r.status != http.StatusOK {
			t.Fatalf("member %d: status %d body %s", i, r.status, r.body)
		}
		if r.cacheStatus != "miss" {
			t.Errorf("member %d: Cache-Status %q, want miss (distinct seeds never dedup)", i, r.cacheStatus)
		}
	}
	batches, batchedReqs, _ := srv.evalQueue.Stats()
	if batches != 1 || batchedReqs != 2 {
		t.Errorf("(batches, batched_requests) = (%d, %d), want (1, 2)", batches, batchedReqs)
	}
	if got := srv.metrics.Admitted.Load(); got != 1 {
		t.Errorf("Admitted = %d, want 1 — the group shares one slot", got)
	}

	// A server with batching, coalescing and caching all off answers each
	// request alone; the payloads must agree field for field.
	solo := quietConfig()
	solo.BatchWindow = -1
	solo.BatchMax = 1
	solo.CacheEntries = -1
	solo.NoCoalesce = true
	tsSolo := httptest.NewServer(newServer(solo))
	defer tsSolo.Close()
	for i := 0; i < 2; i++ {
		want := postEvalFull(t, tsSolo, bodyFor(2020+i))
		if want.status != http.StatusOK {
			t.Fatalf("solo member %d: status %d body %s", i, want.status, want.body)
		}
		if want.cacheStatus != "miss" {
			t.Errorf("solo member %d: Cache-Status %q, want miss", i, want.cacheStatus)
		}
		got := withoutElapsed(t, batched[i].body)
		if fmt.Sprint(got) != fmt.Sprint(withoutElapsed(t, want.body)) {
			t.Errorf("member %d: batched response diverged from solo:\n%s\nvs\n%s",
				i, batched[i].body, want.body)
		}
	}
}

// TestCancelledWaiterSparesSurvivors: a coalesced waiter whose client
// disconnects (499) must not cancel the shared computation for the
// waiters still listening.
func TestCancelledWaiterSparesSurvivors(t *testing.T) {
	cfg := chaosConfig(t, "route=/v1/evaluate,latency=400ms")
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const body = `{"backend":"timely","network":"CNN-1","chips":5}`
	var wg sync.WaitGroup
	var survivor evalResponse
	wg.Add(1)
	go func() { // joins the group and stays
		defer wg.Done()
		survivor = postEvalFull(t, ts, body)
	}()
	time.Sleep(100 * time.Millisecond)

	// The impatient client coalesces onto the same in-flight job, then
	// hangs up halfway through the 400ms computation.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/evaluate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if _, err := ts.Client().Do(req); !strings.Contains(fmt.Sprint(err), "deadline") {
		t.Fatalf("impatient client: err = %v, want its own deadline", err)
	}

	wg.Wait()
	if survivor.status != http.StatusOK {
		t.Fatalf("survivor: status %d body %s", survivor.status, survivor.body)
	}
	if m := withoutElapsed(t, survivor.body); m["backend"] != "timely" {
		t.Errorf("survivor body implausible: %s", survivor.body)
	}
	if got := srv.metrics.ClientGone.Load(); got != 1 {
		t.Errorf("ClientGone = %d, want 1", got)
	}
	if got := srv.metrics.Admitted.Load(); got != 1 {
		t.Errorf("Admitted = %d, want 1", got)
	}
}

// TestNoCoalesceComputesEveryRequest: the baseline configuration really is
// a baseline — identical concurrent requests each take their own slot.
func TestNoCoalesceComputesEveryRequest(t *testing.T) {
	cfg := chaosConfig(t, "route=/v1/evaluate,latency=200ms")
	cfg.NoCoalesce = true
	cfg.BatchWindow = -1
	cfg.BatchMax = 1
	cfg.CacheEntries = -1
	srv := newServer(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const body = `{"backend":"timely","network":"CNN-1","chips":7}`
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r := postEvalFull(t, ts, body); r.status != http.StatusOK || r.cacheStatus != "miss" {
				t.Errorf("status %d Cache-Status %q, want 200 miss", r.status, r.cacheStatus)
			}
		}()
	}
	wg.Wait()
	if got := srv.metrics.Admitted.Load(); got != 3 {
		t.Errorf("Admitted = %d, want 3 (no dedup in the baseline)", got)
	}
	_, _, coalesced := srv.evalQueue.Stats()
	if coalesced != 0 {
		t.Errorf("coalesced_requests = %d, want 0", coalesced)
	}
}
